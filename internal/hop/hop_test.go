package hop

import (
	"math/rand"
	"testing"
	"time"

	"chronos/internal/mac"
	"chronos/internal/stats"
	"chronos/internal/wifi"
)

func TestSweepVisitsEveryBand(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bands := wifi.USBands()
	res := Sweep(rng, bands, Config{})
	if len(res.Visits) < len(bands) {
		t.Fatalf("visited %d bands, want ≥ %d", len(res.Visits), len(bands))
	}
	// Every band must appear among the visits.
	seen := map[int]bool{}
	for _, v := range res.Visits {
		seen[v.Band.Channel] = true
	}
	for _, b := range bands {
		if !seen[b.Channel] {
			t.Errorf("band %v never visited", b)
		}
	}
}

func TestSweepDurationNearPaper(t *testing.T) {
	// Fig. 9a: median hop time over 35 bands ≈ 84 ms.
	rng := rand.New(rand.NewSource(2))
	durs := SweepDurations(rng, wifi.USBands(), Config{}, 50)
	med := stats.Median(durs)
	if med < 0.070 || med > 0.100 {
		t.Errorf("median sweep = %.1f ms, want ≈84 ms", med*1000)
	}
}

func TestSweepMonotoneVisits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res := Sweep(rng, wifi.USBands(), Config{})
	for i := 1; i < len(res.Visits); i++ {
		if res.Visits[i].Enter < res.Visits[i-1].Leave {
			t.Fatalf("visit %d enters before previous leaves", i)
		}
	}
	for _, v := range res.Visits {
		if v.Leave < v.Enter {
			t.Fatalf("visit leaves before entering: %+v", v)
		}
	}
}

func TestSweepLossyLinkRetries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	clean := Sweep(rng, wifi.USBands(), Config{LossProb: 1e-9})
	lossy := Sweep(rng, wifi.USBands(), Config{LossProb: 0.3})
	if lossy.Announces <= clean.Announces {
		t.Errorf("lossy link sent %d announces vs clean %d — retries missing",
			lossy.Announces, clean.Announces)
	}
	if lossy.Duration <= clean.Duration {
		t.Errorf("lossy sweep (%v) not slower than clean (%v)", lossy.Duration, clean.Duration)
	}
}

func TestSweepFailSafeOnTerribleLink(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// 85% loss: some bands should need the fail-safe, yet the sweep must
	// still terminate and cover all bands.
	res := Sweep(rng, wifi.USBands()[:10], Config{LossProb: 0.85, MaxRetries: 3})
	if res.FailSafes == 0 {
		t.Error("no fail-safes triggered at 85% loss")
	}
	if len(res.Visits) < 10 {
		t.Errorf("sweep did not complete: %d visits", len(res.Visits))
	}
}

func TestSweepDeterministicPerSeed(t *testing.T) {
	a := Sweep(rand.New(rand.NewSource(7)), wifi.USBands(), Config{})
	b := Sweep(rand.New(rand.NewSource(7)), wifi.USBands(), Config{})
	if a.Duration != b.Duration || a.Announces != b.Announces {
		t.Error("same seed produced different sweeps")
	}
}

func TestSweepDurationsLength(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	durs := SweepDurations(rng, wifi.USBands()[:5], Config{}, 7)
	if len(durs) != 7 {
		t.Fatalf("len = %d", len(durs))
	}
	for _, d := range durs {
		if d <= 0 {
			t.Error("non-positive duration")
		}
	}
}

func TestSweepScalesWithBandCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	short := stats.Median(SweepDurations(rng, wifi.USBands()[:10], Config{}, 20))
	full := stats.Median(SweepDurations(rng, wifi.USBands(), Config{}, 20))
	if full <= short {
		t.Errorf("35-band sweep (%v) not longer than 10-band (%v)", full, short)
	}
	// Roughly proportional: 35/10 = 3.5×.
	if ratio := full / short; ratio < 2.5 || ratio > 4.5 {
		t.Errorf("scaling ratio = %.2f, want ≈3.5", ratio)
	}
}

// TestHopperCleanLinkNoRetries drives the extracted hop state machine
// directly: on a loss-free link one Hop costs announce + ack + retune and
// needs neither retries nor fail-safes.
func TestHopperCleanLinkNoRetries(t *testing.T) {
	sim := mac.NewSim()
	h := NewHopper(sim, rand.New(rand.NewSource(20)), Config{LossProb: 1e-12})
	var gotRetries, gotFailsafes int
	done := false
	h.Hop(func(retries, failsafes int) {
		gotRetries, gotFailsafes = retries, failsafes
		done = true
	})
	sim.RunAll()
	if !done {
		t.Fatal("Hop never completed")
	}
	if gotRetries != 0 || gotFailsafes != 0 || h.FailSafes != 0 {
		t.Errorf("clean hop: retries=%d failsafes=%d", gotRetries, gotFailsafes)
	}
	if h.Announces != 1 {
		t.Errorf("announces = %d, want 1", h.Announces)
	}
	min := h.Cfg.SwitchTime + 2*h.Cfg.Latency
	max := min + h.Cfg.SwitchJitter
	if at := sim.Now(); at < min || at > max {
		t.Errorf("hop completed at %v, want within [%v, %v]", at, min, max)
	}
}

// TestHopperLostAnnounceRetries exercises the lost-announce/lost-ack
// retransmission path: with heavy loss a single hop needs multiple
// announce rounds but still completes.
func TestHopperLostAnnounceRetries(t *testing.T) {
	sim := mac.NewSim()
	h := NewHopper(sim, rand.New(rand.NewSource(21)), Config{LossProb: 0.6})
	completed := 0
	for i := 0; i < 20; i++ {
		h.Hop(func(retries, failsafes int) { completed++ })
		sim.RunAll()
	}
	if completed != 20 {
		t.Fatalf("completed %d/20 hops", completed)
	}
	if h.Announces <= 20 {
		t.Errorf("announces = %d over 20 hops at 60%% loss — retransmissions missing", h.Announces)
	}
}

// TestHopperRetryExhaustionFailSafe forces retry exhaustion (MaxRetries=1
// under heavy loss) and checks the fail-safe: the hop still completes,
// fail-safes are counted, and each one charges at least the silence
// window plus a retune to RevertTime.
func TestHopperRetryExhaustionFailSafe(t *testing.T) {
	sim := mac.NewSim()
	cfg := Config{LossProb: 0.8, MaxRetries: 1}
	h := NewHopper(sim, rand.New(rand.NewSource(22)), cfg)
	var failsafesSeen int
	for i := 0; i < 30; i++ {
		h.Hop(func(retries, failsafes int) {
			if retries > h.Cfg.MaxRetries {
				t.Errorf("done reported %d retries > MaxRetries %d", retries, h.Cfg.MaxRetries)
			}
			failsafesSeen += failsafes
		})
		sim.RunAll()
	}
	if h.FailSafes == 0 {
		t.Fatal("no fail-safes at 80% loss with MaxRetries=1")
	}
	if failsafesSeen != h.FailSafes {
		t.Errorf("done callbacks reported %d fail-safes, counter says %d", failsafesSeen, h.FailSafes)
	}
	minRevert := time.Duration(h.FailSafes) * (h.Cfg.FailSafe + h.Cfg.SwitchTime)
	if h.RevertTime < minRevert {
		t.Errorf("RevertTime = %v, want ≥ %v (%d reverts)", h.RevertTime, minRevert, h.FailSafes)
	}
}

// TestHopperCompletesOnceWithShortAckTimeout pins single-completion when
// AckTimeout is shorter than the ack round trip: the first round's ack
// lands after its retry timer fired, so a superseded round's ack must
// complete the hop exactly once and silence the outstanding retries.
func TestHopperCompletesOnceWithShortAckTimeout(t *testing.T) {
	sim := mac.NewSim()
	// Round trip = 2 × 60 µs = 120 µs > AckTimeout 100 µs: every round
	// times out before its own ack can arrive.
	cfg := Config{AckTimeout: 100 * time.Microsecond, LossProb: 1e-12}
	h := NewHopper(sim, rand.New(rand.NewSource(25)), cfg)
	for i := 0; i < 10; i++ {
		completions := 0
		h.Hop(func(retries, failsafes int) { completions++ })
		sim.RunAll()
		if completions != 1 {
			t.Fatalf("hop %d completed %d times, want exactly 1", i, completions)
		}
	}
}

// TestSweepRevertToDefaultBandAccounting checks the fail-safe path at the
// sweep level: reverting to the default band shows up in RevertTime, the
// abandoned visits are flagged, and the sweep still covers every band.
func TestSweepRevertToDefaultBandAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	res := Sweep(rng, wifi.USBands()[:8], Config{LossProb: 0.85, MaxRetries: 2})
	if res.FailSafes == 0 {
		t.Fatal("no fail-safes triggered at 85% loss")
	}
	if res.RevertTime < time.Duration(res.FailSafes)*(20*time.Millisecond) {
		t.Errorf("RevertTime = %v for %d fail-safes, want ≥ %d × FailSafe window",
			res.RevertTime, res.FailSafes, res.FailSafes)
	}
	if res.RevertTime >= res.Duration {
		t.Errorf("RevertTime %v exceeds sweep duration %v", res.RevertTime, res.Duration)
	}
	failSafed := 0
	for _, v := range res.Visits {
		if v.FailSafed {
			failSafed++
		}
	}
	if failSafed == 0 {
		t.Error("no visit flagged FailSafed despite fail-safes")
	}
	if len(res.Visits) < 8 {
		t.Errorf("sweep did not recover all bands: %d visits", len(res.Visits))
	}
}

// TestSweepCleanLinkNoReverts pins the inverse: without losses the
// fail-safe machinery must stay silent.
func TestSweepCleanLinkNoReverts(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	res := Sweep(rng, wifi.USBands(), Config{LossProb: 1e-12})
	if res.FailSafes != 0 || res.RevertTime != 0 {
		t.Errorf("clean sweep reverted: failsafes=%d revert=%v", res.FailSafes, res.RevertTime)
	}
	if res.Announces != len(wifi.USBands())-1 {
		t.Errorf("announces = %d, want one per hop (%d)", res.Announces, len(wifi.USBands())-1)
	}
}

func TestSweepDwellRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := Config{Dwell: 5 * time.Millisecond}
	res := Sweep(rng, wifi.USBands()[:3], cfg)
	for i, v := range res.Visits {
		if stay := v.Leave - v.Enter; stay < 5*time.Millisecond {
			t.Errorf("visit %d stayed only %v", i, stay)
		}
	}
}
