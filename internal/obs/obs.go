// Package obs is the unified observability core: dependency-free,
// concurrency-safe counters, gauges, and log-bucketed latency histograms
// that every layer of the pipeline reports through — ndft solver
// telemetry, tof estimation stages, hop protocol events, track fixes —
// surfaced live over the cmd binaries' -metrics endpoint and embedded in
// campaign JSON (exp.WriteJSON).
//
// # Design constraints
//
// The instrumented paths are the hot paths (Plan.Solve/SolveBatch,
// track.RunSession), so the layer is engineered to cost near-nothing:
//
//   - Disabled (the default), every operation is one atomic bool load
//     and a branch. Nothing is recorded, Tick returns 0, and no state is
//     touched — the instrumented solve benchmarks measure the layer at
//     ≤1% overhead (BenchmarkObsOverheadWarmStart asserts it).
//   - Enabled, no operation allocates: counters are sharded padded
//     atomics, histogram recording is one atomic bucket increment plus a
//     sharded compare-and-swap sum, and spans are two monotonic clock
//     reads. The zero-alloc solve and session paths stay 0 allocs/op
//     with obs on (asserted by tests and the bench-smoke lane).
//
// Metric handles are package-level vars in the instrumented packages,
// registered by name at init; Capture renders everything into a
// Snapshot. Instrumentation never changes results — the golden-trace
// tests pin track.RunSession byte-identity with obs on vs off.
//
// # Determinism
//
// Counters count scheduling-independent quantities (solve requests,
// iterations, fixes, protocol events), so campaign counter totals are
// identical at any worker count — a property the exp golden test pins.
// Wall-clock histogram *contents* naturally vary per host and run;
// their counts remain deterministic wherever the underlying event
// streams are (everything except the timing-dependent coalescer
// metrics).
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// enabled is the global gate every recording operation checks first.
// One atomic load when off is the entire cost of the layer.
var enabled atomic.Bool

// SetEnabled turns the observability layer on or off. Off (the default)
// every instrumentation call is a single atomic load and branch.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metrics are being recorded.
func Enabled() bool { return enabled.Load() }

// base anchors the monotonic span clock; Tick and Hist.Since measure
// against it so span starts fit in an int64 of nanoseconds.
var base = time.Now()

// Tick returns the current monotonic span clock in nanoseconds, or 0
// when the layer is disabled — Hist.Since treats a zero start as "span
// never opened" and records nothing, so callers need no second gate.
func Tick() int64 {
	if !enabled.Load() {
		return 0
	}
	return int64(time.Since(base))
}

// shards is the counter/sum shard count (power of two). Sixteen padded
// cells keep campaign worker pools from serializing on one cache line.
const shards = 16

// cell is one cache-line-padded atomic shard.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// fcell is one cache-line-padded atomic float64 shard (IEEE bits).
type fcell struct {
	v atomic.Uint64
	_ [56]byte
}

// shardIdx picks a shard from the address of a stack variable: cheap,
// allocation-free, and stable per goroutine (stacks are spread across
// the address space), so concurrent writers scatter across cells. The
// pointer is converted to uintptr immediately and never dereferenced.
func shardIdx() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b)) >> 6 & (shards - 1))
}

// addFloat accumulates v into a float64 shard with a CAS loop.
func (c *fcell) add(v float64) {
	for {
		old := c.v.Load()
		if c.v.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically increasing event count, sharded across
// padded atomic cells so hot concurrent paths don't contend.
type Counter struct {
	name  string
	cells [shards]cell
}

// Add records n occurrences. No-op (one atomic load) when disabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.cells[shardIdx()].v.Add(n)
}

// Inc records one occurrence.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards.
func (c *Counter) Value() int64 {
	var s int64
	for i := range c.cells {
		s += c.cells[i].v.Load()
	}
	return s
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

func (c *Counter) reset() {
	for i := range c.cells {
		c.cells[i].v.Store(0)
	}
}

// Gauge is a last-value-wins float64 (atomic bits).
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v. No-op when disabled.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

func (g *Gauge) reset() { g.bits.Store(0) }

// registry is the package-level metric namespace. Handles register at
// package init of the instrumented packages (deterministic order per
// package); duplicate names panic — silently merged metrics would make
// two call sites indistinguishable in every snapshot.
var reg struct {
	mu        sync.Mutex
	names     map[string]bool
	counters  []*Counter
	gauges    []*Gauge
	hists     []*Hist
	labels    map[string]string
	callbacks []func(*Snapshot)
}

func register(name string) {
	if reg.names == nil {
		reg.names = make(map[string]bool)
	}
	if reg.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric name %q", name))
	}
	reg.names[name] = true
}

// NewCounter registers a counter under name (panics on duplicates).
func NewCounter(name string) *Counter {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	register(name)
	c := &Counter{name: name}
	reg.counters = append(reg.counters, c)
	return c
}

// NewGauge registers a gauge under name (panics on duplicates).
func NewGauge(name string) *Gauge {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	register(name)
	g := &Gauge{name: name}
	reg.gauges = append(reg.gauges, g)
	return g
}

// NewHist registers a histogram under name (panics on duplicates). By
// convention names carry their unit as a suffix (_ns, _rel, _width).
func NewHist(name string) *Hist {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	register(name)
	h := &Hist{name: name}
	h.minBits.Store(histMinSentinel)
	reg.hists = append(reg.hists, h)
	return h
}

// SetLabel records a static string fact about the process — the ndft
// kernel tier, for example — surfaced verbatim in every Snapshot's
// "labels" object. Labels are for init-time environment facts, not
// per-event data: unlike metrics they record even while the layer is
// disabled (they describe the process, not traffic), and setting one
// takes the registry lock, so keep SetLabel off hot paths.
func SetLabel(name, value string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.labels == nil {
		reg.labels = make(map[string]string)
	}
	reg.labels[name] = value
}

// OnSnapshot registers a callback run by Capture after the registered
// metrics are rendered, so packages can contribute derived gauges (the
// tof plan-registry occupancy, fix rates) without obs depending on them.
func OnSnapshot(f func(*Snapshot)) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.callbacks = append(reg.callbacks, f)
}

// Reset zeroes every registered counter, gauge, and histogram — test
// scaffolding for golden-trace comparisons, not part of the hot path.
func Reset() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, c := range reg.counters {
		c.reset()
	}
	for _, g := range reg.gauges {
		g.reset()
	}
	for _, h := range reg.hists {
		h.reset()
	}
	base = time.Now()
}

// Capture renders every registered metric into a Snapshot and runs the
// OnSnapshot callbacks. Safe to call concurrently with recording;
// the snapshot is a consistent-enough point-in-time read (individual
// atomics, not a global barrier), which is all a telemetry poll needs.
func Capture() *Snapshot {
	reg.mu.Lock()
	counters := append([]*Counter(nil), reg.counters...)
	gauges := append([]*Gauge(nil), reg.gauges...)
	hists := append([]*Hist(nil), reg.hists...)
	callbacks := append([]func(*Snapshot){}, reg.callbacks...)
	var labels map[string]string
	if len(reg.labels) > 0 {
		labels = make(map[string]string, len(reg.labels))
		for k, v := range reg.labels {
			labels[k] = v
		}
	}
	reg.mu.Unlock()

	s := &Snapshot{
		UptimeNs: int64(time.Since(base)),
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]float64, len(gauges)),
		Hists:    make(map[string]HistSnapshot, len(hists)),
		Labels:   labels,
	}
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range hists {
		s.Hists[h.name] = h.snapshot()
	}
	for _, f := range callbacks {
		f(s)
	}
	return s
}

// Snapshot is one point-in-time rendering of every registered metric —
// the /metrics JSON body and the "obs" object campaign JSON embeds.
type Snapshot struct {
	UptimeNs int64                   `json:"uptime_ns"`
	Counters map[string]int64        `json:"counters"`
	Gauges   map[string]float64      `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"hists"`
	// Labels are static process facts registered via SetLabel (the ndft
	// kernel tier, for example); additive, omitted when none are set.
	Labels map[string]string `json:"labels,omitempty"`
}

// HistSnapshot is one histogram's rendered state: totals, the standard
// quantiles, and the occupied log buckets.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets lists only the occupied buckets, lo ≤ v < hi each.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one occupied histogram bucket.
type Bucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int64   `json:"count"`
}
