package obs

import (
	"testing"
)

// withObs enables recording for one test body, resetting all registered
// metrics before and after so globally registered handles from other
// tests don't bleed through.
func withObs(t *testing.T, body func()) {
	t.Helper()
	Reset()
	SetEnabled(true)
	defer func() {
		SetEnabled(false)
		Reset()
	}()
	body()
}

func TestCounterGatedWhenDisabled(t *testing.T) {
	c := NewCounter("test.gate.counter")
	g := NewGauge("test.gate.gauge")
	h := NewHist("test.gate.hist")
	SetEnabled(false)
	c.Add(5)
	g.Set(3.5)
	h.Observe(1.25)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled recording leaked: counter=%d gauge=%v hist=%d",
			c.Value(), g.Value(), h.Count())
	}
	if tick := Tick(); tick != 0 {
		t.Fatalf("Tick() = %d while disabled, want 0", tick)
	}
	// A span opened while disabled records nothing even if the layer
	// turns on before it closes.
	start := Tick()
	SetEnabled(true)
	defer func() { SetEnabled(false); Reset() }()
	h.Since(start)
	if h.Count() != 0 {
		t.Fatal("Since recorded a span opened while disabled")
	}
}

func TestCounterGaugeRoundTrip(t *testing.T) {
	c := NewCounter("test.rt.counter")
	g := NewGauge("test.rt.gauge")
	withObs(t, func() {
		c.Add(3)
		c.Inc()
		if got := c.Value(); got != 4 {
			t.Fatalf("counter = %d, want 4", got)
		}
		g.Set(2.5)
		g.Set(-1.25)
		if got := g.Value(); got != -1.25 {
			t.Fatalf("gauge = %v, want -1.25", got)
		}
	})
	if c.Value() != 0 {
		t.Fatal("Reset did not zero the counter")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	NewCounter("test.dup.name")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	NewHist("test.dup.name")
}

func TestCaptureAndCallbacks(t *testing.T) {
	c := NewCounter("test.capture.counter")
	h := NewHist("test.capture.hist")
	OnSnapshot(func(s *Snapshot) { s.Gauges["test.capture.derived"] = float64(s.Counters["test.capture.counter"]) * 2 })
	withObs(t, func() {
		c.Add(7)
		h.Observe(10)
		h.Observe(20)
		s := Capture()
		if s.Counters["test.capture.counter"] != 7 {
			t.Fatalf("snapshot counter = %d, want 7", s.Counters["test.capture.counter"])
		}
		if s.Gauges["test.capture.derived"] != 14 {
			t.Fatalf("snapshot callback gauge = %v, want 14", s.Gauges["test.capture.derived"])
		}
		hs := s.Hists["test.capture.hist"]
		if hs.Count != 2 || hs.Sum != 30 || hs.Min != 10 || hs.Max != 20 {
			t.Fatalf("hist snapshot = %+v, want count 2 sum 30 min 10 max 20", hs)
		}
		var total int64
		for _, b := range hs.Buckets {
			if b.Lo >= b.Hi {
				t.Fatalf("bucket bounds inverted: %+v", b)
			}
			total += b.Count
		}
		if total != hs.Count {
			t.Fatalf("bucket counts sum to %d, want %d", total, hs.Count)
		}
		if s.UptimeNs <= 0 {
			t.Fatalf("uptime = %d, want > 0", s.UptimeNs)
		}
	})
}

// TestRecordingAllocsFree pins the tentpole property: with the layer
// enabled, every recording operation is allocation-free.
func TestRecordingAllocsFree(t *testing.T) {
	c := NewCounter("test.alloc.counter")
	g := NewGauge("test.alloc.gauge")
	h := NewHist("test.alloc.hist")
	withObs(t, func() {
		if n := testing.AllocsPerRun(100, func() {
			c.Inc()
			g.Set(1.5)
			h.Observe(123456)
			h.Since(Tick())
		}); n != 0 {
			t.Fatalf("recording allocates %v allocs/op, want 0", n)
		}
	})
}
