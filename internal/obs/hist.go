package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram geometry: positive values are bucketed by their binary
// exponent with histSub linear sub-buckets per octave, so a bucket's
// relative width is at most 1/histSub (12.5%) of its value — quantiles
// read from bucket midpoints land within one bucket width of the exact
// order statistic, the tolerance the correctness suite pins against
// stats.Percentile. Exponents span 2^histMinExp .. 2^histMaxExp, wide
// enough for nanosecond latencies (1 ns .. hours as float ns) and for
// dimensionless ratios (relative noise ~0.05, batch widths 1..16);
// values outside land in the shared under/overflow edge buckets, and
// non-positive or NaN values land in the underflow bucket.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histMinExp  = -64
	histMaxExp  = 64
	// histBuckets = underflow + (octaves × sub-buckets) + overflow.
	histBuckets = (histMaxExp-histMinExp)*histSub + 2
)

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if !(v > 0) { // catches 0, negatives, and NaN
		return 0
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023
	if exp < histMinExp {
		return 0
	}
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := int(bits >> (52 - histSubBits) & (histSub - 1))
	return 1 + (exp-histMinExp)*histSub + sub
}

// bucketBounds returns bucket i's [lo, hi) value range. The edge
// buckets extend to 0 and +Inf.
func bucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, math.Ldexp(1, histMinExp)
	}
	if i >= histBuckets-1 {
		return math.Ldexp(1, histMaxExp), math.Inf(1)
	}
	oct, sub := (i-1)/histSub, (i-1)%histSub
	scale := math.Ldexp(1, histMinExp+oct)
	lo = scale * (1 + float64(sub)/histSub)
	if sub == histSub-1 {
		hi = scale * 2
	} else {
		hi = scale * (1 + float64(sub+1)/histSub)
	}
	return lo, hi
}

// Hist is a log-bucketed histogram safe for concurrent recording:
// Observe is one atomic bucket increment plus a sharded sum update —
// no locks, no allocation. Count is always exactly the sum of the
// bucket counts (the invariant the race hammer test pins), because the
// bucket increment IS the count.
type Hist struct {
	name    string
	buckets [histBuckets]atomic.Int64
	sums    [shards]fcell
	// minBits/maxBits track observed extremes as raw float bits —
	// non-negative floats compare like their bit patterns, so a CAS
	// watermark works without a lock. minBits starts at histMinSentinel
	// (a NaN pattern no finite observation produces).
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

// histMinSentinel marks "no observation yet" in minBits: all-ones is a
// NaN bit pattern, and NaN never reaches the watermark.
const histMinSentinel = ^uint64(0)

// Observe records one value. No-op (one atomic load) when disabled.
func (h *Hist) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sums[shardIdx()].add(v)
	h.extremes(v)
}

// Since records the elapsed span since a Tick() start, in nanoseconds.
// A start of 0 means the span was opened while the layer was disabled
// (Tick returned 0); nothing is recorded, so callers need no gate.
func (h *Hist) Since(start int64) {
	if start <= 0 || !enabled.Load() {
		return
	}
	h.Observe(float64(int64(time.Since(base)) - start))
}

// extremes folds v into the min/max watermarks with CAS loops. Only
// finite non-negative values participate (matching the bucket domain).
func (h *Hist) extremes(v float64) {
	if !(v >= 0) || math.IsInf(v, 1) {
		return
	}
	bits := math.Float64bits(v)
	for {
		old := h.minBits.Load()
		if bits >= old {
			break
		}
		if h.minBits.CompareAndSwap(old, bits) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if bits <= old {
			break
		}
		if h.maxBits.CompareAndSwap(old, bits) {
			break
		}
	}
}

// Name returns the histogram's registered name.
func (h *Hist) Name() string { return h.name }

// Count returns the total number of observations (the exact sum of the
// bucket counts).
func (h *Hist) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Hist) Sum() float64 {
	var s float64
	for i := range h.sums {
		s += math.Float64frombits(h.sums[i].v.Load())
	}
	return s
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) estimated at the midpoint
// of the bucket holding the p-th observation — within one bucket width
// (≤12.5% relative) of the exact order statistic. Returns 0 on an empty
// histogram. The rank convention matches stats.Percentile's linear
// interpolation target: rank = p·(n−1) counted from the smallest.
func (h *Hist) Quantile(p float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := p * float64(n-1)
	if rank < 0 {
		rank = 0
	}
	var seen float64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		seen += float64(c)
		if rank < seen {
			lo, hi := bucketBounds(i)
			if math.IsInf(hi, 1) {
				return lo
			}
			return (lo + hi) / 2
		}
	}
	// Numerically unreachable (rank ≤ n−1 < total); return the top
	// occupied bucket's midpoint for safety.
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			lo, hi := bucketBounds(i)
			if math.IsInf(hi, 1) {
				return lo
			}
			return (lo + hi) / 2
		}
	}
	return 0
}

func (h *Hist) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	for i := range h.sums {
		h.sums[i].v.Store(0)
	}
	h.minBits.Store(histMinSentinel)
	h.maxBits.Store(0)
}

// snapshot renders the histogram.
func (h *Hist) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.Count(), Sum: h.Sum()}
	if s.Count == 0 {
		return s
	}
	if bits := h.minBits.Load(); bits != histMinSentinel {
		s.Min = math.Float64frombits(bits)
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			lo, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
		}
	}
	return s
}
