package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"chronos/internal/stats"
)

// quantileTolerance is the suite's contract: a histogram quantile must
// land within one bucket width of the exact order statistic. The
// relevant bucket is the one holding the exact percentile; with
// histSub=8 sub-buckets per octave its width is at most 12.5% of the
// value.
func quantileTolerance(exact float64) float64 {
	lo, hi := bucketBounds(bucketOf(exact))
	if math.IsInf(hi, 1) {
		return lo // overflow bucket: degenerate, callers avoid it
	}
	return hi - lo
}

// checkQuantiles fills a fresh histogram with xs and compares p50, p95,
// and p99 against stats.Percentile.
func checkQuantiles(t *testing.T, name string, h *Hist, xs []float64) {
	t.Helper()
	Reset()
	for _, x := range xs {
		h.Observe(x)
	}
	for _, p := range []float64{50, 95, 99} {
		exact := stats.Percentile(xs, p)
		got := h.Quantile(p / 100)
		if tol := quantileTolerance(exact); math.Abs(got-exact) > tol {
			t.Errorf("%s: p%.0f = %v, exact %v (tolerance %v)", name, p, got, exact, tol)
		}
	}
}

// TestQuantilesWithinOneBucketWidth cross-validates the log-bucketed
// quantiles against the exact stats.Percentile on the adversarial
// shapes the satellite calls out: bimodal, heavy-tail, and
// single-sample, plus a dense uniform baseline.
func TestQuantilesWithinOneBucketWidth(t *testing.T) {
	h := NewHist("test.quant.hist")
	SetEnabled(true)
	defer func() { SetEnabled(false); Reset() }()
	rng := rand.New(rand.NewSource(11))

	// Bimodal: a 60/40 split four orders of magnitude apart, each mode
	// jittered. The 60% low mode holds p50; p95/p99 live in the high
	// mode — the split is chosen so no tested percentile interpolates
	// across the inter-mode gap, where no estimator bounded by local
	// bucket width can follow the linear interpolation.
	bimodal := make([]float64, 0, 1000)
	for i := 0; i < 600; i++ {
		bimodal = append(bimodal, 100*(1+0.2*rng.Float64()))
	}
	for i := 0; i < 400; i++ {
		bimodal = append(bimodal, 1e6*(1+0.2*rng.Float64()))
	}
	checkQuantiles(t, "bimodal", h, bimodal)

	// Heavy tail: Pareto with α=1.5 (infinite variance). 10k samples
	// keep ~100 observations beyond p99, so neighboring order
	// statistics there are still far closer than a bucket width.
	heavy := make([]float64, 10000)
	for i := range heavy {
		heavy[i] = math.Pow(1-rng.Float64(), -1/1.5)
	}
	checkQuantiles(t, "heavy-tail", h, heavy)

	// Single sample: every quantile is the one observation.
	checkQuantiles(t, "single-sample", h, []float64{137.5})

	// Dense uniform baseline.
	uniform := make([]float64, 5000)
	for i := range uniform {
		uniform[i] = 1 + 99*rng.Float64()
	}
	checkQuantiles(t, "uniform", h, uniform)
}

func TestHistEdgeValues(t *testing.T) {
	h := NewHist("test.edge.hist")
	withObs(t, func() {
		h.Observe(0)
		h.Observe(-5)
		h.Observe(math.NaN())
		h.Observe(math.Ldexp(1, -100)) // below the smallest octave
		h.Observe(math.Ldexp(1, 100))  // above the largest octave
		if got := h.Count(); got != 5 {
			t.Fatalf("count = %d, want 5 (every value lands in some bucket)", got)
		}
		s := h.snapshot()
		var total int64
		for _, b := range s.Buckets {
			total += b.Count
		}
		if total != 5 {
			t.Fatalf("bucket sum = %d, want 5", total)
		}
	})
}

// TestHistConcurrentMergedCount hammers one histogram from 16
// goroutines and checks the deterministic merge invariants: the total
// count equals the sum of per-goroutine contributions AND the sum of
// the bucket counts (the count is the bucket increments, so no
// interleaving can break it), the value sum is exact (integer-valued
// observations), and the extremes are the true extremes. Run under
// -race in CI's race-short lane.
func TestHistConcurrentMergedCount(t *testing.T) {
	h := NewHist("test.race.hist")
	withObs(t, func() {
		const goroutines = 16
		const perG = 10000
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				for i := 0; i < perG; i++ {
					// Integer-valued observations ≤ 2^20 keep the sharded
					// float sum exact under any addition order.
					h.Observe(float64(1 + rng.Intn(1<<20)))
				}
			}(g)
		}
		wg.Wait()

		const want = goroutines * perG
		if got := h.Count(); got != want {
			t.Fatalf("merged count = %d, want %d", got, want)
		}
		s := h.snapshot()
		var total int64
		for _, b := range s.Buckets {
			total += b.Count
		}
		if total != want {
			t.Fatalf("bucket counts sum to %d, want %d", total, want)
		}

		// Recompute the exact expectation sequentially.
		var sum, min, max float64
		min = math.Inf(1)
		for g := 0; g < goroutines; g++ {
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				v := float64(1 + rng.Intn(1<<20))
				sum += v
				min = math.Min(min, v)
				max = math.Max(max, v)
			}
		}
		if got := h.Sum(); got != sum {
			t.Fatalf("merged sum = %v, want %v", got, sum)
		}
		if s.Min != min || s.Max != max {
			t.Fatalf("extremes = [%v, %v], want [%v, %v]", s.Min, s.Max, min, max)
		}
	})
}

func TestBucketGeometry(t *testing.T) {
	// Every positive finite value maps to a bucket whose bounds contain
	// it, and consecutive buckets tile without gaps.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := math.Ldexp(1+rng.Float64(), rng.Intn(120)-60)
		b := bucketOf(v)
		lo, hi := bucketBounds(b)
		if v < lo || v >= hi {
			t.Fatalf("value %v in bucket %d with bounds [%v, %v)", v, b, lo, hi)
		}
	}
	for i := 1; i < histBuckets-2; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between buckets %d and %d: %v != %v", i, i+1, hi, lo)
		}
	}
}
