// Package obshttp serves the observability layer over HTTP: a JSON
// /metrics snapshot plus the standard net/http/pprof profiles. It lives
// in its own package so the zero-dependency obs core never links
// net/http; only binaries that pass -metrics pay for the server.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"chronos/internal/obs"
)

// Handler returns the management mux:
//
//	/metrics      — indented JSON obs.Snapshot (counters, gauges, hists)
//	/debug/pprof  — the standard runtime profiles
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(obs.Capture())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve enables metric recording, binds addr (":0" picks a free port),
// and serves Handler in a background goroutine. It returns the bound
// address so callers can print or poll it. The server lives for the
// process; management endpoints on short-lived CLI runs don't need a
// graceful-shutdown dance.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	obs.SetEnabled(true)
	srv := &http.Server{Handler: Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// WatchLine formats one live status line from a snapshot — the
// tracking-pipeline headline the cmd binaries' -watch mode prints:
// fix count and rate, cap rate, p50/p99 fix latency (virtual ms), and
// p99 solve-stage wall latency (ms).
func WatchLine(s *obs.Snapshot) string {
	fix := s.Hists["track.fix_latency_ns"]
	solve := s.Hists["tof.stage.solve_ns"]
	return fmt.Sprintf(
		"fixes=%d rate=%.2f/s cap=%.3f fix_p50=%.1fms fix_p99=%.1fms solve_p99=%.2fms",
		s.Counters["track.fixes"],
		s.Gauges["track.fix_rate_hz"],
		s.Gauges["track.cap_rate"],
		fix.P50/1e6, fix.P99/1e6, solve.P99/1e6,
	)
}

// Watch polls the in-process snapshot every interval and calls emit
// with a WatchLine until stop is closed. It runs in the caller's
// goroutine; start it with go Watch(...).
func Watch(interval time.Duration, stop <-chan struct{}, emit func(string)) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			emit(WatchLine(obs.Capture()))
		}
	}
}
