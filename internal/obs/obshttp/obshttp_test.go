package obshttp

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chronos/internal/obs"
)

var testCounter = obs.NewCounter("obshttp.test.counter")

func TestMetricsEndpointServesSnapshot(t *testing.T) {
	obs.Reset()
	obs.SetEnabled(true)
	defer func() { obs.SetEnabled(false); obs.Reset() }()
	testCounter.Add(42)

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q, want application/json", ct)
	}
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if s.Counters["obshttp.test.counter"] != 42 {
		t.Fatalf("snapshot counter = %d, want 42", s.Counters["obshttp.test.counter"])
	}

	// pprof rides along on the same mux.
	pp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %s", pp.Status)
	}
}

func TestServeBindsAndEnables(t *testing.T) {
	obs.Reset()
	defer func() { obs.SetEnabled(false); obs.Reset() }()
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Fatal("Serve did not enable recording")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics on %s: %s", addr, resp.Status)
	}
}

func TestWatchLineFormat(t *testing.T) {
	obs.Reset()
	obs.SetEnabled(true)
	defer func() { obs.SetEnabled(false); obs.Reset() }()
	line := WatchLine(obs.Capture())
	for _, field := range []string{"fixes=", "rate=", "cap=", "fix_p99=", "solve_p99="} {
		if !strings.Contains(line, field) {
			t.Fatalf("watch line %q missing %q", line, field)
		}
	}
}
