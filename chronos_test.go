package chronos

import (
	"math"
	"math/rand"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	// Two devices 3 m apart over a clean channel.
	tx, rx := NewRadio(rng), NewRadio(rng)
	tx.Quirk24, rx.Quirk24 = false, false
	link := &Link{
		TX: tx, RX: rx,
		Channel: NewChannel([]Path{{Delay: 3 / SpeedOfLight, Gain: 1}}),
		SNRdB:   30,
	}
	bands := Bands5GHz()
	est := NewToFEstimator(ToFConfig{Mode: Bands5GHzOnly, MaxIter: 800})

	// Calibrate once at a known distance, then measure.
	calSweep := link.Sweep(rng, bands, 3, 2.4e-3)
	offset, err := CalibrateToF(est, bands, calSweep, 3)
	if err != nil {
		t.Fatal(err)
	}
	tofSec := offset // offset is in seconds of ToF; reuse for distance calc below
	_ = tofSec

	d, err := MeasureDistance(rng, link, est, bands, offset)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-3) > 0.25 {
		t.Errorf("distance = %.3f m, want ≈3 m", d)
	}
}

func TestFacadeBandHelpers(t *testing.T) {
	if len(USBands()) != 35 {
		t.Errorf("USBands = %d", len(USBands()))
	}
	if len(Bands5GHz())+len(Bands24GHz()) != 35 {
		t.Error("band split inconsistent")
	}
}

func TestFacadeOfficeAndHop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	office := NewOffice(rng, OfficeConfig{})
	if len(office.Locations) != 30 {
		t.Errorf("locations = %d", len(office.Locations))
	}
	res := HopSweep(rng, USBands(), HopConfig{})
	if res.Duration <= 0 || len(res.Visits) < 35 {
		t.Errorf("hop sweep: %v, %d visits", res.Duration, len(res.Visits))
	}
}

func TestFacadeDrone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res := DroneTrack(rng, DroneSensor{}, DroneConfig{Duration: 10})
	if len(res.Deviations) == 0 {
		t.Fatal("no deviations")
	}
}

func TestFacadeTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(4))

	// Incremental estimation through the facade: fold a sweep band by band.
	tx, rx := NewRadio(rng), NewRadio(rng)
	tx.Quirk24, rx.Quirk24 = false, false
	link := &Link{
		TX: tx, RX: rx,
		Channel: NewChannel([]Path{{Delay: 4 / SpeedOfLight, Gain: 1}}),
		SNRdB:   30,
	}
	bands := Bands5GHz()
	est := NewToFEstimator(ToFConfig{Mode: Bands5GHzOnly, MaxIter: 500})
	sweep := link.Sweep(rng, bands, 2, 2.4e-3)
	acc := est.NewSweep()
	for i, b := range bands {
		if err := acc.AddBand(b, sweep[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := acc.Estimate(); err != nil {
		t.Fatalf("incremental estimate: %v", err)
	}

	// Kalman smoothing and the multi-device scheduler.
	tr := NewRangeTracker(TrackFilterConfig{})
	if got, ok := tr.Observe(0, 5); !ok || got != 5 {
		t.Errorf("tracker priming = (%v, %v)", got, ok)
	}
	sched := RunTrackSchedule(rng, TrackSchedulerConfig{Devices: 2})
	if len(sched.Fixes) != 2 || sched.Utilization <= 0 {
		t.Errorf("schedule: %d fixes, util %v", len(sched.Fixes), sched.Utilization)
	}
	multi := RunTrackMulti(rng, TrackMultiConfig{
		Scheduler: TrackSchedulerConfig{Devices: 2, SweepsPerDevice: 3},
		Speed:     0.8,
	})
	if len(multi.Devices) != 2 {
		t.Errorf("multi devices = %d", len(multi.Devices))
	}
}

func TestFacadeTrackSession(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline session")
	}
	rng := rand.New(rand.NewSource(5))
	office := NewOffice(rng, OfficeConfig{})
	est := NewToFEstimator(ToFConfig{Mode: Bands5GHzOnly, MaxIter: 400})
	res, err := RunTrackSession(rng, office, est, TrackSessionConfig{Speed: 0.8, Sweeps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fixes) == 0 {
		t.Error("session streamed no fixes")
	}
}

func TestFacadeLocalizer(t *testing.T) {
	l := NewLocalizer(LinearArray(3, 0.3), ToFConfig{})
	if len(l.Estimators) != 3 {
		t.Errorf("estimators = %d", len(l.Estimators))
	}
}

func TestFacadePlanRegistryStats(t *testing.T) {
	st := SharedPlanRegistryStats()
	if st.MaxPlans <= 0 {
		t.Errorf("shared plan registry reports no LRU bound: %+v", st)
	}
	if st.Plans < 0 || st.Builds < st.Evictions {
		t.Errorf("implausible registry counters: %+v", st)
	}
}

// TestFacadeStopRuleAndTelemetry pins the PR-5 facade surface: the
// stop-rule re-exports select the solver's termination behavior through
// ToFConfig, and estimates surface the convergence telemetry
// (Converged, Iterations, GapAtStop, NoiseFloor).
func TestFacadeStopRuleAndTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tx, rx := NewRadio(rng), NewRadio(rng)
	tx.Quirk24, rx.Quirk24 = false, false
	link := &Link{
		TX: tx, RX: rx,
		Channel: NewChannel([]Path{{Delay: 6 / SpeedOfLight, Gain: 1}, {Delay: 9 / SpeedOfLight, Gain: 0.5}}),
		SNRdB:   26,
	}
	bands := Bands5GHz()
	sweep := link.Sweep(rng, bands, 3, 2.4e-3)

	gap := NewToFEstimator(ToFConfig{Mode: Bands5GHzOnly, MaxIter: 1200, Stop: StopGap})
	rg, err := gap.Estimate(bands, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !rg.Converged || rg.Iterations <= 0 || rg.NoiseFloor <= 0 {
		t.Errorf("gap telemetry: converged=%v iters=%d noiseRel=%v", rg.Converged, rg.Iterations, rg.NoiseFloor)
	}
	if rg.GapAtStop <= 0 {
		t.Errorf("gap-stopped estimate reported no duality gap (%v)", rg.GapAtStop)
	}
	eps := NewToFEstimator(ToFConfig{Mode: Bands5GHzOnly, MaxIter: 1200, Stop: StopIterate})
	re, err := eps.Estimate(bands, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if re.Work <= rg.Work {
		t.Errorf("fixed-tolerance solve work %d not above gap-stopped %d at campaign SNR", re.Work, rg.Work)
	}
	if d := math.Abs(rg.ToF-re.ToF) * 1e9; d > 0.05 {
		t.Errorf("gap-stopped ToF differs from fixed-tolerance by %.3f ns", d)
	}
}
