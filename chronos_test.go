package chronos

import (
	"math"
	"math/rand"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	// Two devices 3 m apart over a clean channel.
	tx, rx := NewRadio(rng), NewRadio(rng)
	tx.Quirk24, rx.Quirk24 = false, false
	link := &Link{
		TX: tx, RX: rx,
		Channel: NewChannel([]Path{{Delay: 3 / SpeedOfLight, Gain: 1}}),
		SNRdB:   30,
	}
	bands := Bands5GHz()
	est := NewToFEstimator(ToFConfig{Mode: Bands5GHzOnly, MaxIter: 800})

	// Calibrate once at a known distance, then measure.
	calSweep := link.Sweep(rng, bands, 3, 2.4e-3)
	offset, err := CalibrateToF(est, bands, calSweep, 3)
	if err != nil {
		t.Fatal(err)
	}
	tofSec := offset // offset is in seconds of ToF; reuse for distance calc below
	_ = tofSec

	d, err := MeasureDistance(rng, link, est, bands, offset)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-3) > 0.25 {
		t.Errorf("distance = %.3f m, want ≈3 m", d)
	}
}

func TestFacadeBandHelpers(t *testing.T) {
	if len(USBands()) != 35 {
		t.Errorf("USBands = %d", len(USBands()))
	}
	if len(Bands5GHz())+len(Bands24GHz()) != 35 {
		t.Error("band split inconsistent")
	}
}

func TestFacadeOfficeAndHop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	office := NewOffice(rng, OfficeConfig{})
	if len(office.Locations) != 30 {
		t.Errorf("locations = %d", len(office.Locations))
	}
	res := HopSweep(rng, USBands(), HopConfig{})
	if res.Duration <= 0 || len(res.Visits) < 35 {
		t.Errorf("hop sweep: %v, %d visits", res.Duration, len(res.Visits))
	}
}

func TestFacadeDrone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res := DroneTrack(rng, DroneSensor{}, DroneConfig{Duration: 10})
	if len(res.Deviations) == 0 {
		t.Fatal("no deviations")
	}
}

func TestFacadeLocalizer(t *testing.T) {
	l := NewLocalizer(LinearArray(3, 0.3), ToFConfig{})
	if len(l.Estimators) != 3 {
		t.Errorf("estimators = %d", len(l.Estimators))
	}
}
