// Top-level benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation, each driving the same internal/exp
// campaign the chronos-bench binary uses, plus micro-benchmarks for the
// pipeline's hot kernels. Reduced trial counts keep -bench runs
// tractable; the binary regenerates the full-size campaigns.
package chronos

import (
	"flag"
	"math/rand"
	"testing"

	"chronos/internal/dsp"
	"chronos/internal/exp"
	"chronos/internal/ndft"
	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/track"
	"chronos/internal/wifi"
)

// benchWorkers sizes the campaign worker pool for every exp benchmark
// (0 = all cores). Per-trial seeding keeps results identical across
// worker counts, so this trades only wall-clock, not comparability:
//
//	go test -bench . -workers 1
var benchWorkers = flag.Int("workers", 0, "campaign worker-pool size for exp benchmarks (0 = all cores)")

// quick returns bench-scale options: small campaigns, fixed seed.
func quick(trials int) exp.Options {
	return exp.Options{Seed: 1, Trials: trials, Workers: *benchWorkers}
}

func BenchmarkFig3CRTAlignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig3(quick(1))
		if r.Metrics["error_ps"] > 100 {
			b.Fatal("CRT solver regressed")
		}
	}
}

func BenchmarkFig4MultipathProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig4(quick(1))
		if r.Metrics["peaks"] < 3 {
			b.Fatal("profile recovery regressed")
		}
	}
}

func BenchmarkFig7aToFAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig7a(quick(4))
	}
}

func BenchmarkFig7bProfileSparsity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig7b(quick(4))
	}
}

func BenchmarkFig7cDetectionDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig7c(quick(3))
	}
}

func BenchmarkFig8aDistanceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig8a(quick(6))
	}
}

func BenchmarkFig8bLocalization30cm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig8b(quick(2))
	}
}

func BenchmarkFig8cLocalization100cm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig8c(quick(2))
	}
}

func BenchmarkFig9aHopSweepTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig9a(quick(30))
		if m := r.Metrics["median_ms"]; m < 50 || m > 150 {
			b.Fatalf("hop median drifted: %v ms", m)
		}
	}
}

func BenchmarkFig9bVideoTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig9b(quick(1))
		if r.Metrics["stalls"] != 0 {
			b.Fatal("video stalled")
		}
	}
}

func BenchmarkFig9cTCPTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig9c(quick(1))
	}
}

func BenchmarkFig10aDroneDeviation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig10a(quick(2))
	}
}

func BenchmarkFig10bDroneTrajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig10b(quick(1))
	}
}

func BenchmarkTrackCapacityCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.TrackCapacity(quick(2))
		if f := r.Metrics["fixes_per_sec_n1"]; f < 5 || f > 20 {
			b.Fatalf("single-device fix rate drifted: %v/s", f)
		}
	}
}

func BenchmarkTrackSpeedCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.TrackSpeed(quick(1))
	}
}

func BenchmarkAliasRankingCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.AliasRanking(quick(4))
		if r.Metrics["adversarial_ghost_rate_family"] > r.Metrics["adversarial_ghost_rate_vertex"] {
			b.Fatalf("family ranking ghosts more than vertex: %v > %v",
				r.Metrics["adversarial_ghost_rate_family"], r.Metrics["adversarial_ghost_rate_vertex"])
		}
	}
}

func BenchmarkPerfAliasCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.PerfAlias(quick(8))
		// The warm-start acceptance criterion: warm alias refits must cost
		// at most 75% of the cold ones on the static steady state.
		if ratio := r.Metrics["alias_warm_ratio_static"]; !(ratio > 0) || ratio > 0.75 {
			b.Fatalf("warm alias-refit ratio %v, want (0, 0.75]", ratio)
		}
	}
}

func BenchmarkAblationDelayCompensation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationDelay(quick(3))
	}
}

func BenchmarkAblationCFOCancellation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationCFO(quick(3))
	}
}

func BenchmarkAblationBandModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationBands(quick(3))
	}
}

// --- Micro-benchmarks for the pipeline's hot kernels ---

// benchSession streams one full-pipeline tracking session per iteration:
// a static target, eight sweeps, the fused evaluation estimator. The
// warm variant is the steady state the plan/warm-start architecture
// targets — every sweep's inversion seeded from the previous fix.
func benchSession(b *testing.B, warm bool) {
	b.Helper()
	office := sim.NewOffice(rand.New(rand.NewSource(7)), sim.OfficeConfig{})
	cfg := track.SessionConfig{Speed: 0, Sweeps: 8, WarmStart: warm}
	est := tof.NewEstimator(tof.Config{Mode: tof.BandsFused, Quirk24: true, MaxIter: 1200})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := track.RunSession(rand.New(rand.NewSource(7)), office, est, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Fixes) == 0 {
			b.Fatal("session produced no fixes")
		}
	}
}

func BenchmarkTrackSessionSteadyState(b *testing.B) { benchSession(b, true) }

func BenchmarkTrackSessionColdStart(b *testing.B) { benchSession(b, false) }

func BenchmarkPerfSolverCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.PerfSolver(quick(6))
		if r.Metrics["iters_warm_static"] <= 0 {
			b.Fatal("solver snapshot missing warm iterations")
		}
		// Under the noise-adaptive gap stop the snapshot's solves must
		// actually converge: iteration-capped solves were previously
		// indistinguishable from converged ones in this output.
		if r.CapRate == nil || *r.CapRate > 0.05 {
			b.Fatalf("solver snapshot cap-rate %v, want ~0 under the gap stop", r.CapRate)
		}
	}
}

func BenchmarkPerfConvergeCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.PerfConverge(quick(6))
		// The PR-5 acceptance criteria, asserted on every bench-smoke run:
		// at campaign SNR the gap rule must at least halve the cold solve
		// work against the fixed-tolerance ablation with cap-rate ~0, the
		// office median must not move beyond solver tolerance, and the
		// colliding-families fixture must keep its alias refits warm.
		if red := r.Metrics["work_reduction_26"]; red < 2 {
			b.Fatalf("campaign-SNR cold work reduction %.2f×, want ≥ 2×", red)
		}
		if capRate := r.Metrics["cap_rate_gap_26"]; capRate > 0.05 {
			b.Fatalf("campaign-SNR cap rate %.3f under the gap rule, want ~0", capRate)
		}
		if d := r.Metrics["office_median_delta_ns"]; d > 0.05 {
			b.Fatalf("office median moved %.3f ns between gap and fixed-tolerance stacks, want ≤ 0.05", d)
		}
		if ratio := r.Metrics["collide_alias_warm_ratio"]; !(ratio > 0) || ratio > 0.75 {
			b.Fatalf("colliding-families warm/cold alias work %v, want (0, 0.75]", ratio)
		}
		if d := r.Metrics["collide_warm_cold_dtof_ns"]; d > 0.05 {
			b.Fatalf("colliding-families warm fix diverged %.4f ns from cold, want ≤ 0.05", d)
		}
	}
}

func BenchmarkPerfBatchCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.PerfBatch(quick(3))
		// The batch-equivalence contract holds on every machine: batched
		// results must be byte-identical to sequential ones.
		if r.Metrics["byte_identical"] != 1 {
			b.Fatal("batched solves diverged from sequential solves")
		}
		// The throughput criterion keys on the kernel tier and is
		// measured against scalar-forced sequential solves (the
		// batch_speedup_b16_vs_scalar leg) — the stable baseline across
		// PRs, since same-tier sequential solves are now vectorized too.
		// 8-lane AVX-512 must clear ≥4× aggregate solves/sec at B=16,
		// the 4-lane tiers (AVX2, NEON) ≥2.5×. Machines without a vector
		// kernel still batch correctly but gain less, so scalar runs
		// assert only the equivalence contract above.
		switch tier := r.Labels["vector_kernel"]; tier {
		case "avx512":
			if s := r.Metrics["batch_speedup_b16_vs_scalar"]; s < 4 {
				b.Fatalf("B=16 batch speedup %.2f× vs scalar on avx512, want ≥ 4×", s)
			}
		case "avx2", "neon":
			if s := r.Metrics["batch_speedup_b16_vs_scalar"]; s < 2.5 {
				b.Fatalf("B=16 batch speedup %.2f× vs scalar on %s, want ≥ 2.5×", s, tier)
			}
		}
	}
}

func BenchmarkPerfServiceCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.PerfServiceScaled(quick(1))
		// The CI-sized daemon must hold its whole fleet concurrently
		// tracked through the window, sustain throughput, and account
		// every device at drain: tracked == stat + full == retired.
		fleet := r.Metrics["stat_devices"] + r.Metrics["full_devices"]
		if r.Metrics["tracked_devices"] != fleet {
			b.Fatalf("tracked %v devices, fleet is %v", r.Metrics["tracked_devices"], fleet)
		}
		if r.Metrics["retired"] != fleet {
			b.Fatalf("retired %v devices at drain, fleet is %v", r.Metrics["retired"], fleet)
		}
		if r.Metrics["fix_rate_hz"] <= 0 {
			b.Fatal("service campaign recorded no fixes")
		}
		if r.Metrics["fix_p99_us"] <= 0 {
			b.Fatal("service campaign recorded no fix-latency distribution")
		}
	}
}

// solveBatchFixture builds the service-scale subcarrier plan and 16
// cold fixed-iteration requests — the steady-state service workload the
// batched solver targets.
func solveBatchFixture(b *testing.B) (*ndft.Plan, []ndft.SolveRequest) {
	b.Helper()
	var freqs []float64
	for _, bd := range wifi.Bands5GHz() {
		for _, k := range wifi.CSISubcarriers() {
			freqs = append(freqs, wifi.SubcarrierFreq(bd, k))
		}
	}
	plan, err := ndft.NewPlan(freqs, ndft.TauGrid(2*60e-9, 2*0.1e-9))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	reqs := make([]ndft.SolveRequest, 16)
	for i := range reqs {
		tau := (5 + rng.Float64()*20) * 1e-9
		h := make(dsp.Vec, len(freqs))
		for j, f := range freqs {
			for p, d := range []float64{tau, tau + 4.2e-9, tau + 9.5e-9} {
				h[j] += dsp.FromPolar([]float64{1, 0.6, 0.4}[p], -2*2*3.141592653589793*f*d)
			}
			h[j] += complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
		}
		reqs[i] = ndft.SolveRequest{H: h, Dst: &ndft.Result{}, InvertOptions: ndft.InvertOptions{MaxIter: 400}}
	}
	return plan, reqs
}

// BenchmarkSolveBatch times the batched solver primitive at B=16. With
// recycled Dsts the steady state allocates nothing (run with -benchmem;
// internal/ndft's TestSolveBatchSteadyStateAllocsNothing asserts it).
func BenchmarkSolveBatch(b *testing.B) {
	plan, reqs := solveBatchFixture(b)
	if err := plan.SolveBatch(reqs); err != nil { // warm pools before timing
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.SolveBatch(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSequential16 is BenchmarkSolveBatch's per-session
// baseline: the same 16 requests solved one at a time.
func BenchmarkSolveSequential16(b *testing.B) {
	plan, reqs := solveBatchFixture(b)
	if err := plan.SolveBatch(reqs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			if _, err := plan.Solve(reqs[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkNDFTInvert(b *testing.B) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	taus := ndft.TauGrid(120e-9, 0.2e-9)
	mat, err := ndft.NewMatrix(freqs, taus)
	if err != nil {
		b.Fatal(err)
	}
	p := make(dsp.Vec, len(taus))
	p[100], p[180] = 1, 0.5
	h := mat.Forward(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.Invert(h, ndft.InvertOptions{MaxIter: 500}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZeroSubcarrierInterpolation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rx, tx := newBenchRadio(rng), newBenchRadio(rng)
	ch := NewChannel([]Path{{Delay: 10e-9, Gain: 1}, {Delay: 15e-9, Gain: 0.5}})
	m := rx.Measure(rng, ch, wifi.Band{Channel: 36, Center: 5.18e9}, MeasureOptions{SNRdB: 40, TX: tx})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tof.ZeroSubcarrier(m, 1, tof.InterpSpline); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullToFEstimate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rx, tx := newBenchRadio(rng), newBenchRadio(rng)
	link := &Link{TX: tx, RX: rx, Channel: NewChannel([]Path{
		{Delay: 10e-9, Gain: 1}, {Delay: 14e-9, Gain: 0.6}, {Delay: 19e-9, Gain: 0.4},
	}), SNRdB: 28}
	bands := Bands5GHz()
	est := NewToFEstimator(ToFConfig{Mode: Bands5GHzOnly, MaxIter: 1000})
	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(bands, sweep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSISweep35Bands(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	rx, tx := newBenchRadio(rng), newBenchRadio(rng)
	link := &Link{TX: tx, RX: rx, Channel: NewChannel([]Path{{Delay: 10e-9, Gain: 1}}), SNRdB: 28}
	bands := USBands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Sweep(rng, bands, 3, 2.4e-3)
	}
}

func newBenchRadio(rng *rand.Rand) *Radio {
	r := NewRadio(rng)
	r.Quirk24 = false
	return r
}
